// Command ndorder computes a nested-dissection fill-reducing ordering
// for a graph (METIS file or built-in suite graph) using ScalaPart as
// the separator engine, and reports the symbolic Cholesky fill against
// the natural ordering.
//
//	ndorder -graph ecology1 -scale 0.25 -o perm.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

func main() {
	var (
		file  = flag.String("file", "", "METIS graph file")
		name  = flag.String("graph", "ecology1", "built-in suite graph name")
		scale = flag.Float64("scale", 0.25, "size scale for built-in graphs")
		p     = flag.Int("p", 8, "simulated ranks per bisection")
		seed  = flag.Int64("seed", 42, "random seed")
		out   = flag.String("o", "", "write the permutation here (one vertex id per line)")
	)
	flag.Parse()
	var g *graph.Graph
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndorder:", err)
			os.Exit(1)
		}
		g, err = graph.ReadMETIS(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndorder:", err)
			os.Exit(1)
		}
	} else {
		for _, e := range gen.SuiteEntries() {
			if e.Name == *name {
				g = e.Build(*scale).G
				break
			}
		}
		if g == nil {
			fmt.Fprintf(os.Stderr, "ndorder: unknown graph %q\n", *name)
			os.Exit(1)
		}
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	perm := order.NestedDissection(g, *p, core.DefaultOptions(*seed))
	natural := make([]int32, g.NumVertices())
	for i := range natural {
		natural[i] = int32(i)
	}
	ndFill := order.FillIn(g, perm)
	natFill := order.FillIn(g, natural)
	fmt.Printf("fill: natural %d, nested dissection %d (%.2fx reduction)\n",
		natFill, ndFill, float64(natFill)/float64(ndFill))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ndorder:", err)
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		for _, v := range perm {
			fmt.Fprintln(w, v)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "ndorder:", err)
			os.Exit(1)
		}
		fmt.Printf("permutation written to %s\n", *out)
	}
}
