// Command graphgen emits any of the built-in synthetic test graphs in
// METIS or MatrixMarket format, optionally alongside its natural
// coordinates, so the suite can be fed to external tools.
//
// Example:
//
//	graphgen -graph hugebubbles-00020 -scale 0.5 -o bubbles.graph -coords bubbles.xy
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		name     = flag.String("graph", "delaunay_n20", "suite graph name (see -list)")
		scale    = flag.Float64("scale", 1.0, "size scale (1 = default bench size)")
		format   = flag.String("format", "metis", "output format: metis | mm")
		out      = flag.String("o", "", "output file (default stdout)")
		coords   = flag.String("coords", "", "also write natural coordinates ('x y' per line) here")
		compress = flag.Bool("compress", false, "report delta/varint compressed sizing stats and emit through the compressed representation (byte-identical output)")
		list     = flag.Bool("list", false, "list graphs and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range gen.SuiteEntries() {
			fmt.Println(e.Name)
		}
		return
	}
	var built *gen.Generated
	for _, e := range gen.SuiteEntries() {
		if e.Name == *name {
			built = e.Build(*scale)
			break
		}
	}
	if built == nil {
		fmt.Fprintf(os.Stderr, "graphgen: unknown graph %q\n", *name)
		os.Exit(1)
	}
	var plainBytes int64
	if *compress {
		// Compress before emitting so the write path itself exercises the
		// compressed representation; the emitted file is byte-identical.
		plainBytes = built.G.AdjacencyBytes()
		built.G = graph.Compress(built.G)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "metis":
		err = graph.WriteMETIS(w, built.G)
	case "mm":
		err = graph.WriteMatrixMarket(w, built.G)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *coords != "" {
		if built.Coords == nil {
			fmt.Fprintf(os.Stderr, "graphgen: %s has no natural coordinates\n", *name)
			os.Exit(1)
		}
		f, err := os.Create(*coords)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		for _, p := range built.Coords {
			fmt.Fprintf(bw, "%g %g\n", p.X, p.Y)
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
	}
	if *compress {
		comp := built.G.AdjacencyBytes()
		perEdge, ratio := 0.0, 0.0
		if m := built.G.NumEdges(); m > 0 {
			perEdge = float64(comp) / float64(m)
			ratio = 100 * float64(comp) / float64(plainBytes)
		}
		fmt.Fprintf(os.Stderr, "graphgen: %s n=%d m=%d adjacency plain=%dB compressed=%dB (%.2f B/edge, %.1f%% of plain)\n",
			*name, built.G.NumVertices(), built.G.NumEdges(), plainBytes, comp, perEdge, ratio)
	} else {
		fmt.Fprintf(os.Stderr, "graphgen: %s n=%d m=%d\n", *name, built.G.NumVertices(), built.G.NumEdges())
	}
}
