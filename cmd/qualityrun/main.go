// Command qualityrun reruns one suite graph through the bench harness
// — the exact configuration the recorded BENCH trajectories use — with
// the quality knobs toggled, and prints before/after rows. Used to
// produce the quality tables in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/mpi"
	"repro/internal/refine"
)

func main() {
	var (
		graphName = flag.String("graph", "hugetrace-00000", "suite graph")
		scale     = flag.Float64("scale", 8, "suite scale")
		p         = flag.Int("p", 16, "processor count")
		trials    = flag.Int("trials", 3, "trial count for the evolved row")
	)
	flag.Parse()
	mpi.SetReplayMode(mpi.ReplayBatched)
	row := func(label string, fullcut bool, trials int) {
		defer refine.SetFullCut(refine.SetFullCut(fullcut))
		h := bench.New(*scale, []int{*p})
		h.Compress = true
		h.Trials = trials
		h.Out = os.Stderr
		r := h.Get(*graphName, bench.MethodSP, *p)
		fmt.Printf("%-22s cut=%d imb=%.6f modeled=%.6f\n", label, r.Cut, r.Imbalance, r.Time)
	}
	row("refine=off trials=1", false, 1)
	row("refine=full trials=1", true, 1)
	fmt.Println()
	row(fmt.Sprintf("refine=full trials=%d", *trials), true, *trials)
}
